// List-history parity suite: AION's materialized-prefix list checking
// must be indistinguishable from the offline ChronosList under infinite
// timeout + in-order arrival, a 1-shard ShardedAion must stay identical
// to the monolith on list histories (and every shard count must emit the
// same deterministic stream), and GC/spill must keep below-watermark
// list stragglers — readers and appenders — verifiable exactly like
// register stragglers.
#include <gtest/gtest.h>

#include <array>
#include <filesystem>
#include <string>
#include <vector>

#include "../testutil.h"
#include "core/aion.h"
#include "core/chronos_list.h"
#include "online/sharded_aion.h"
#include "workload/generator.h"

namespace chronos::online {
namespace {

using chronos::testing::DriveToEnd;
using chronos::testing::HistoryBuilder;
using chronos::testing::SessionPreservingShuffle;
using chronos::testing::SortedViolations;

History MakeListWorkload(uint64_t txns, uint64_t seed, bool faulty) {
  workload::WorkloadParams p;
  p.sessions = 8;
  p.txns = txns;
  p.ops_per_txn = 6;
  p.keys = 16;
  p.seed = seed;
  p.list_mode = true;
  db::DbConfig cfg;
  if (faulty) {
    // List-visible faults only (register-read faults are no-ops here).
    cfg.faults.lost_update_prob = 0.05;
    cfg.faults.early_commit_prob = 0.03;
    cfg.faults.late_start_prob = 0.03;
    cfg.fault_seed = seed * 7 + 3;
  }
  return workload::GenerateDefaultHistory(p, cfg);
}

std::array<size_t, 6> CountsOf(const CountingSink& sink) {
  std::array<size_t, 6> c{};
  for (ViolationType t :
       {ViolationType::kSession, ViolationType::kInt, ViolationType::kExt,
        ViolationType::kNoConflict, ViolationType::kTsOrder,
        ViolationType::kTsDuplicate}) {
    c[static_cast<size_t>(t)] = sink.count(t);
  }
  return c;
}

// Aion's final per-class counts equal ChronosList's on list histories
// under infinite timeout + in-order arrival — clean and faulty.
TEST(ListParityTest, AionMatchesChronosListInOrder) {
  for (uint64_t seed : {21u, 22u, 23u}) {
    for (bool faulty : {false, true}) {
      History h = MakeListWorkload(600, seed, faulty);

      CountingSink offline;
      ChronosList::CheckHistory(h, &offline);

      CountingSink online;
      Aion::Options opt;
      opt.ext_timeout_ms = 1u << 30;
      Aion aion(opt, &online);
      uint64_t now = 0;
      for (const Transaction& t : h.txns) aion.OnTransaction(t, now++);
      aion.Finish();

      EXPECT_EQ(CountsOf(online), CountsOf(offline))
          << "seed=" << seed << " faulty=" << faulty;
      if (faulty) {
        EXPECT_GT(offline.total(), 0u) << "faults must surface violations";
      } else {
        EXPECT_EQ(offline.total(), 0u);
      }
    }
  }
}

// Same equality under a session-preserving shuffle: out-of-order arrival
// exercises the append re-check path (no NextVersionAfter bound for
// lists) and tentative-verdict flips, but with an infinite timeout every
// verdict still finalizes against the full chain.
TEST(ListParityTest, AionMatchesChronosListShuffled) {
  History h = MakeListWorkload(600, 31, /*faulty=*/true);
  auto arrivals = SessionPreservingShuffle(h, 77);

  CountingSink offline;
  ChronosList::CheckHistory(h, &offline);

  CountingSink online;
  Aion::Options opt;
  opt.ext_timeout_ms = 1u << 30;
  Aion aion(opt, &online);
  DriveToEnd(&aion, arrivals);

  EXPECT_EQ(CountsOf(online), CountsOf(offline));
}

// 1-shard ShardedAion: identical violation stream to the monolith on
// list histories, and deterministic byte-identical emission across shard
// counts and repeated runs.
TEST(ListParityTest, ShardedMatchesMonolithOnListHistories) {
  History h = MakeListWorkload(500, 41, /*faulty=*/true);
  auto arrivals = SessionPreservingShuffle(h, 13);
  CheckerOptions opt;
  opt.ext_timeout_ms = 1u << 30;

  VectorSink mono_sink;
  Aion mono(opt, &mono_sink);
  DriveToEnd(&mono, arrivals);
  auto mono_v = SortedViolations(mono_sink.TakeAll());
  ASSERT_GT(mono_v.size(), 0u);
  CheckerFootprint mono_fp = mono.GetFootprint();

  std::vector<Violation> reference;
  for (size_t shards : {1u, 2u, 8u}) {
    for (int rep = 0; rep < 2; ++rep) {
      VectorSink sink;
      ShardedAion sharded(opt, shards, &sink);
      DriveToEnd(&sharded, arrivals);
      auto raw = sink.TakeAll();
      if (reference.empty()) {
        reference = raw;
      } else {
        ASSERT_EQ(raw.size(), reference.size())
            << "shards=" << shards << " rep=" << rep;
        for (size_t i = 0; i < raw.size(); ++i) {
          EXPECT_EQ(raw[i], reference[i]) << "shards=" << shards << " index "
                                          << i;
        }
      }
      auto got = SortedViolations(std::move(raw));
      ASSERT_EQ(got.size(), mono_v.size()) << "shards=" << shards;
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i], mono_v[i]) << "shards=" << shards << " index " << i;
      }
      // List version boundaries and live txns survive identically.
      CheckerFootprint fp = sharded.GetFootprint();
      EXPECT_EQ(fp.live_txns, mono_fp.live_txns);
      EXPECT_EQ(fp.versions, mono_fp.versions);
      EXPECT_EQ(fp.intervals, mono_fp.intervals);
      EXPECT_EQ(sharded.flip_stats().total_flips(),
                mono.flip_stats().total_flips())
          << "shards=" << shards;
    }
  }
}

// A hand-written straggler history: three appends to key 0, filler
// traffic on key 1 that advances the GC watermark past them, then (a) a
// reader whose view lies below the collapsed base and (b) an appender
// whose commit lies below the collapsed base, both delivered last. With
// a spill store both resolve exactly as offline (clean); without one
// they are counted unverifiable — and every shard count agrees.
History StragglerListHistory() {
  return HistoryBuilder()
      .Txn(1, 0, 0, 1, 4).A(0, 1)
      .Txn(2, 0, 1, 7, 10).A(0, 2)
      .Txn(3, 0, 2, 13, 16).A(0, 3)
      .Txn(4, 0, 3, 19, 22).A(1, 100)
      .Txn(5, 0, 4, 25, 28).A(1, 101)
      .Txn(6, 0, 5, 31, 34).A(1, 102)
      .Txn(7, 0, 6, 37, 40).A(1, 103)
      // (a) straggler reader: view 5 sees exactly [1].
      .Txn(8, 1, 0, 5, 43).L(0, {1})
      // A late reader above the watermark observing the post-straggler
      // frontier — delivered BEFORE the straggler appender below, so the
      // merged-below install must re-check (and flip) it.
      .Txn(10, 3, 0, 45, 46).L(0, {1, 99, 2, 3})
      // (b) straggler appender: commits at 6, between t1 and t2, so the
      // final cumulative sequence is [1, 99, 2, 3].
      .Txn(9, 2, 0, 2, 6).A(0, 99)
      .Build();
}

TEST(ListParityTest, GcSpillStragglerParityWithAppends) {
  History h = StragglerListHistory();

  // The history is NOT offline-clean: t9 overlaps t1 on key 0 (interval
  // [2,6] vs [1,4]) — a genuine NOCONFLICT both sides must report.
  CountingSink offline;
  ChronosList::CheckHistory(h, &offline);
  EXPECT_EQ(offline.count(ViolationType::kExt), 0u);
  EXPECT_EQ(offline.count(ViolationType::kInt), 0u);
  EXPECT_EQ(offline.count(ViolationType::kNoConflict), 1u);

  auto run = [&](const std::string& spill_dir) {
    CountingSink sink;
    Aion::Options opt;
    opt.ext_timeout_ms = 1;
    opt.spill_dir = spill_dir;
    Aion aion(opt, &sink);
    size_t since_gc = 0;
    for (size_t i = 0; i < h.txns.size(); ++i) {
      // The last two arrivals (reader t10, then appender t9) share one
      // clock tick so t10's EXT timeout cannot fire between them: t9's
      // below-base install must find t10 live and re-check it.
      aion.OnTransaction(h.txns[i], std::min<uint64_t>(i, 8));
      if (++since_gc >= 2) {
        since_gc = 0;
        aion.GcToLiveTarget(1);
      }
    }
    aion.Finish();
    EXPECT_GT(aion.watermark(), 16u) << "GC must pass the key-0 appends";
    return std::make_pair(CountsOf(sink),
                          aion.stats().unsafe_below_watermark);
  };

  std::string dir = chronos::testing::UniqueTempDir("straggler_spill");
  std::filesystem::remove_all(dir);
  auto [with_spill, with_spill_unsafe] = run(dir);
  EXPECT_EQ(with_spill, CountsOf(offline))
      << "spill store must keep list stragglers verifiable";
  EXPECT_EQ(with_spill_unsafe, 0u);
  std::filesystem::remove_all(dir);

  auto [no_spill, no_spill_unsafe] = run("");
  (void)no_spill;
  EXPECT_GT(no_spill_unsafe, 0u)
      << "spill-less GC must count list stragglers as unverifiable";
}

// The same straggler schedule through every shard count: verdicts and
// watermarks stay identical to the monolith, spill dirs and all.
TEST(ListParityTest, GcSpillStragglerShardedParity) {
  History h = StragglerListHistory();
  std::string base = chronos::testing::UniqueTempDir("straggler_sharded");
  std::filesystem::remove_all(base);

  CheckerOptions opt;
  opt.ext_timeout_ms = 1;

  VectorSink mono_sink;
  CheckerOptions mono_opt = opt;
  mono_opt.spill_dir = base + "/mono";
  Aion mono(mono_opt, &mono_sink);
  DriveToEnd(&mono, h.txns, /*gc_every=*/2, /*gc_target=*/1);
  auto mono_v = SortedViolations(mono_sink.TakeAll());

  for (size_t shards : {1u, 2u, 8u}) {
    VectorSink sink;
    CheckerOptions sopt = opt;
    sopt.spill_dir = base + "/s" + std::to_string(shards);
    ShardedAion sharded(sopt, shards, &sink);
    DriveToEnd(&sharded, h.txns, /*gc_every=*/2, /*gc_target=*/1);
    auto got = SortedViolations(sink.TakeAll());
    ASSERT_EQ(got.size(), mono_v.size()) << "shards=" << shards;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], mono_v[i]) << "shards=" << shards << " index " << i;
    }
    EXPECT_EQ(sharded.watermark(), mono.watermark()) << "shards=" << shards;
  }
  std::filesystem::remove_all(base);
}

// EXT list mismatches carry the first divergent element index (the
// report payload that makes shrunk list repros diagnosable), identically
// online and offline.
TEST(ListParityTest, ListMismatchReportsDivergenceIndex) {
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 2).A(0, 1)
                  .Txn(2, 0, 1, 3, 4).A(0, 2)
                  // Observes [1, 7]: diverges from [1, 2] at index 1.
                  .Txn(3, 1, 0, 5, 6).L(0, {1, 7})
                  .Build();

  CountingSink offline(8);
  ChronosList::CheckHistory(h, &offline);
  ASSERT_EQ(offline.count(ViolationType::kExt), 1u);
  ASSERT_EQ(offline.first().size(), 1u);
  EXPECT_EQ(offline.first()[0].divergence, 1);
  EXPECT_EQ(offline.first()[0].expected, 2);  // frontier length
  EXPECT_EQ(offline.first()[0].got, 2);       // observed length

  CountingSink online(8);
  Aion::Options opt;
  opt.ext_timeout_ms = 1u << 30;
  Aion aion(opt, &online);
  DriveToEnd(&aion, h.txns);
  ASSERT_EQ(online.count(ViolationType::kExt), 1u);
  ASSERT_EQ(online.first().size(), 1u);
  EXPECT_EQ(online.first()[0].divergence, 1);
  EXPECT_EQ(online.first()[0].expected, 2);
  EXPECT_EQ(online.first()[0].got, 2);
}

}  // namespace
}  // namespace chronos::online
