// The DPOR enumerator: exactly one representative per Mazurkiewicz
// trace class of session-preserving arrival orders. The ground truth is
// a brute-force closure: generate every session-preserving linear
// extension, then union-find classes under adjacent independent swaps.
#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "explore/enumerator.h"
#include "explore/schedule.h"

#include "../testutil.h"

namespace chronos::explore {
namespace {

using chronos::testing::HistoryBuilder;

std::vector<std::vector<size_t>> Explore(const std::vector<Arrival>& a,
                                         const Dependence& dep,
                                         uint64_t max_schedules = 0,
                                         EnumerationCounts* counts = nullptr) {
  std::vector<std::vector<size_t>> out;
  EnumerationCounts c = EnumerateSchedules(
      a, dep, max_schedules, [&](const std::vector<size_t>& perm) {
        out.push_back(perm);
        return true;
      });
  if (counts) *counts = c;
  return out;
}

// All session-preserving linear extensions, by brute-force DFS.
void AllExtensions(const std::vector<Arrival>& a, std::vector<bool>& used,
                   std::vector<size_t>& cur,
                   std::vector<std::vector<size_t>>* out) {
  if (cur.size() == a.size()) {
    out->push_back(cur);
    return;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (used[i]) continue;
    bool enabled = true;
    for (size_t j = 0; j < a.size(); ++j) {
      if (!used[j] && j != i && a[j].txn->sid == a[i].txn->sid &&
          a[j].txn->sno < a[i].txn->sno) {
        enabled = false;
      }
    }
    if (!enabled) continue;
    used[i] = true;
    cur.push_back(i);
    AllExtensions(a, used, cur, out);
    cur.pop_back();
    used[i] = false;
  }
}

// Trace classes: BFS closure of each extension under adjacent
// independent swaps; returns the number of classes.
size_t CountTraceClasses(const std::vector<std::vector<size_t>>& exts,
                         const Dependence& dep,
                         std::vector<std::set<std::vector<size_t>>>* classes) {
  std::set<std::vector<size_t>> seen;
  size_t n_classes = 0;
  for (const std::vector<size_t>& start : exts) {
    if (seen.count(start)) continue;
    ++n_classes;
    std::set<std::vector<size_t>> cls;
    std::vector<std::vector<size_t>> frontier = {start};
    cls.insert(start);
    while (!frontier.empty()) {
      std::vector<size_t> s = frontier.back();
      frontier.pop_back();
      for (size_t k = 0; k + 1 < s.size(); ++k) {
        if (dep.Depends(s[k], s[k + 1])) continue;
        std::vector<size_t> t = s;
        std::swap(t[k], t[k + 1]);
        if (cls.insert(t).second) frontier.push_back(t);
      }
    }
    for (const auto& s : cls) seen.insert(s);
    if (classes) classes->push_back(std::move(cls));
  }
  return n_classes;
}

// Cross-check the enumerator against the brute-force class count:
// exactly one explored schedule per class, and explored + pruned
// branches account for the search without double-visits.
void CheckAgainstBruteForce(const History& h, bool position_sensitive) {
  std::vector<Arrival> a = CanonicalArrivals(h, CheckMode::kSi);
  Dependence dep(a, position_sensitive);

  std::vector<std::vector<size_t>> exts;
  std::vector<bool> used(a.size(), false);
  std::vector<size_t> cur;
  AllExtensions(a, used, cur, &exts);

  std::vector<std::set<std::vector<size_t>>> classes;
  size_t n_classes = CountTraceClasses(exts, dep, &classes);

  EnumerationCounts counts;
  std::vector<std::vector<size_t>> explored = Explore(a, dep, 0, &counts);
  EXPECT_EQ(explored.size(), n_classes);
  EXPECT_EQ(counts.explored, n_classes);
  EXPECT_FALSE(counts.truncated);
  EXPECT_FALSE(counts.aborted);

  // Every explored schedule is a valid extension, in a distinct class.
  std::set<std::vector<size_t>> ext_set(exts.begin(), exts.end());
  std::set<size_t> hit;
  for (const std::vector<size_t>& s : explored) {
    EXPECT_TRUE(ext_set.count(s)) << "not session-preserving";
    for (size_t c = 0; c < classes.size(); ++c) {
      if (classes[c].count(s)) {
        EXPECT_TRUE(hit.insert(c).second) << "class visited twice";
      }
    }
  }
  EXPECT_EQ(hit.size(), n_classes) << "some class never visited";
}

TEST(EnumeratorTest, FullyDependentVisitsEveryPermutation) {
  // Three writers of one key: no two arrivals commute.
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 2).W(0, 1)
                  .Txn(2, 1, 0, 3, 4).W(0, 2)
                  .Txn(3, 2, 0, 5, 6).W(0, 3)
                  .Build();
  std::vector<Arrival> a = CanonicalArrivals(h, CheckMode::kSi);
  Dependence dep(a, false);
  EnumerationCounts counts;
  std::vector<std::vector<size_t>> explored = Explore(a, dep, 0, &counts);
  EXPECT_EQ(explored.size(), 6u);
  EXPECT_EQ(counts.pruned, 0u);
  // First visit is the canonical (identity) order.
  EXPECT_EQ(explored[0], (std::vector<size_t>{0, 1, 2}));
}

TEST(EnumeratorTest, DisjointGroupsCollapseToOrderingsWithinGroups) {
  // Two key-disjoint fully-dependent pairs: 4! = 24 extensions but only
  // 2 x 2 = 4 trace classes.
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 2).W(0, 1)
                  .Txn(2, 1, 0, 3, 4).W(0, 2)
                  .Txn(3, 2, 0, 5, 6).W(1, 1)
                  .Txn(4, 3, 0, 7, 8).W(1, 2)
                  .Build();
  std::vector<Arrival> a = CanonicalArrivals(h, CheckMode::kSi);
  Dependence dep(a, false);
  EnumerationCounts counts;
  EXPECT_EQ(Explore(a, dep, 0, &counts).size(), 4u);
  EXPECT_GT(counts.pruned, 0u);
}

TEST(EnumeratorTest, SessionOrderIsNeverViolated) {
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 2).W(0, 1)
                  .Txn(2, 0, 1, 3, 4).W(1, 1)  // same session, after tid 1
                  .Txn(3, 1, 0, 5, 6).W(2, 1)
                  .Build();
  std::vector<Arrival> a = CanonicalArrivals(h, CheckMode::kSi);
  Dependence dep(a, false);
  for (const std::vector<size_t>& s : Explore(a, dep)) {
    size_t p1 = 0, p2 = 0;
    for (size_t k = 0; k < s.size(); ++k) {
      if (a[s[k]].txn->tid == 1) p1 = k;
      if (a[s[k]].txn->tid == 2) p2 = k;
    }
    EXPECT_LT(p1, p2);
  }
}

TEST(EnumeratorTest, MatchesBruteForceClosure) {
  // Mixed dependence: shared keys inside groups, a cross-group session,
  // and one loner.
  CheckAgainstBruteForce(HistoryBuilder()
                             .Txn(1, 0, 0, 1, 2).W(0, 1)
                             .Txn(2, 1, 0, 3, 4).W(0, 2).W(1, 1)
                             .Txn(3, 0, 1, 5, 6).W(2, 1)
                             .Txn(4, 2, 0, 7, 8).W(1, 2)
                             .Txn(5, 3, 0, 9, 10).W(9, 1)
                             .Build(),
                         false);
  // Fully independent: one class.
  CheckAgainstBruteForce(HistoryBuilder()
                             .Txn(1, 0, 0, 1, 2).W(0, 1)
                             .Txn(2, 1, 0, 3, 4).W(1, 1)
                             .Txn(3, 2, 0, 5, 6).W(2, 1)
                             .Txn(4, 3, 0, 7, 8).W(3, 1)
                             .Build(),
                         false);
  // Position-sensitive: every extension is its own class.
  CheckAgainstBruteForce(HistoryBuilder()
                             .Txn(1, 0, 0, 1, 2).W(0, 1)
                             .Txn(2, 1, 0, 3, 4).W(1, 1)
                             .Txn(3, 1, 1, 5, 6).W(2, 1)
                             .Txn(4, 2, 0, 7, 8).W(3, 1)
                             .Build(),
                         true);
}

TEST(EnumeratorTest, MaxSchedulesTruncates) {
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 2).W(0, 1)
                  .Txn(2, 1, 0, 3, 4).W(0, 2)
                  .Txn(3, 2, 0, 5, 6).W(0, 3)
                  .Build();
  std::vector<Arrival> a = CanonicalArrivals(h, CheckMode::kSi);
  Dependence dep(a, false);
  EnumerationCounts counts;
  EXPECT_EQ(Explore(a, dep, 2, &counts).size(), 2u);
  EXPECT_TRUE(counts.truncated);
  EXPECT_FALSE(counts.aborted);
}

TEST(EnumeratorTest, VisitorAborts) {
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 2).W(0, 1)
                  .Txn(2, 1, 0, 3, 4).W(0, 2)
                  .Build();
  std::vector<Arrival> a = CanonicalArrivals(h, CheckMode::kSi);
  Dependence dep(a, false);
  EnumerationCounts c = EnumerateSchedules(
      a, dep, 0, [](const std::vector<size_t>&) { return false; });
  EXPECT_EQ(c.explored, 1u);
  EXPECT_TRUE(c.aborted);
}

TEST(EnumeratorTest, EmptyHistoryExploresTheEmptySchedule) {
  std::vector<Arrival> a;
  Dependence dep(a, false);
  EnumerationCounts counts;
  std::vector<std::vector<size_t>> explored = Explore(a, dep, 0, &counts);
  ASSERT_EQ(explored.size(), 1u);
  EXPECT_TRUE(explored[0].empty());
  EXPECT_EQ(counts.explored, 1u);
}

}  // namespace
}  // namespace chronos::explore
