// Tier-1 schedule exploration of the regression corpus: every shrunk
// .repro small enough for the exhaustive enumerator runs through the
// full verdict-invariance oracle — any arrival order of a corpus
// history must keep its verdict (modulo the divergence-table waivers
// the oracle already encodes: D4 SESSION boolean, D6 duplicate
// timestamps). A flip here means a refactor made some checker's verdict
// depend on arrival order or pipeline timing.
#include <string>

#include <gtest/gtest.h>

#include "explore/oracle.h"
#include "explore/schedule.h"
#include "fuzz/corpus.h"

namespace chronos::explore {
namespace {

const char* kCorpusDir = CHRONOS_TEST_SRCDIR "/tests/corpus";

// Session chains keep corpus schedule spaces small (tens of classes),
// but bound the run anyway so a future corpus entry cannot stall
// tier-1; truncation still certifies every schedule it did visit.
constexpr uint64_t kMaxSchedulesPerEntry = 512;

TEST(ExploreCorpusTest, EverySmallCorpusEntryIsScheduleInvariant) {
  fuzz::Corpus corpus = fuzz::LoadCorpus(kCorpusDir);
  ASSERT_TRUE(corpus.ok()) << corpus.error;
  ASSERT_FALSE(corpus.entries.empty());

  size_t explored_entries = 0;
  for (const fuzz::CorpusEntry& e : corpus.entries) {
    if (e.history.txns.size() > kMaxExploreTxns) continue;
    ++explored_entries;

    ExploreOptions opts;
    opts.oracle.mode = e.ser ? CheckMode::kSer : CheckMode::kSi;
    opts.max_schedules = kMaxSchedulesPerEntry;
    ExploreResult r = ExploreHistory(e.history, opts);

    EXPECT_TRUE(r.error.empty()) << e.file << ": " << r.error;
    EXPECT_FALSE(r.flip_found)
        << e.file << " (" << e.tag << "): " << r.rule << ": " << r.detail
        << " flip schedule " << FormatScheduleSidecar(r);
    EXPECT_GE(r.explored, 1u) << e.file;

    // The reference schedule's violation counts match the manifest for
    // the classes that are exact under strict knobs (everything but
    // SESSION, which is boolean per D4, and the D6 dup entries).
    const bool dup = fuzz::HistoryHasDuplicateTs(
        e.history, e.ser ? CheckMode::kSer : CheckMode::kSi);
    if (!dup && e.tag != "D3") {  // D3: HLC skew, online counts differ
      for (ViolationType t : {ViolationType::kInt, ViolationType::kExt,
                              ViolationType::kNoConflict,
                              ViolationType::kTsOrder}) {
        EXPECT_EQ(r.reference_counts[static_cast<size_t>(t)],
                  e.expected[static_cast<size_t>(t)])
            << e.file << ": " << ViolationTypeName(t);
      }
      EXPECT_EQ(
          r.reference_counts[static_cast<size_t>(ViolationType::kSession)] > 0,
          e.expected[static_cast<size_t>(ViolationType::kSession)] > 0)
          << e.file << ": SESSION presence";
    }
  }
  // The corpus is a shrunk corpus: nearly everything fits under the
  // enumerator's cap. Guard against silently exploring nothing.
  EXPECT_GE(explored_entries, 10u);
}

}  // namespace
}  // namespace chronos::explore
