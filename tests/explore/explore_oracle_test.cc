// The verdict-invariance oracles: clean and violating histories are
// schedule-invariant across the whole adversarial checker matrix, the
// divergence waivers (D5/D6/D7) apply, and the planted verdict-order
// bug is caught and shrinks to a tiny repro with its flipping schedule
// pinned in the sidecar.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "explore/oracle.h"
#include "explore/schedule.h"

#include "../testutil.h"

namespace chronos::explore {
namespace {

using chronos::testing::HistoryBuilder;

// Three writers + one reader on two keys, all cross-dependent on key 0.
History StaleReadHistory() {
  return HistoryBuilder()
      .Txn(1, 0, 0, 1, 2).W(0, 1)
      .Txn(2, 1, 0, 3, 4).W(0, 2)
      .Txn(3, 2, 0, 5, 6).R(0, 1)  // stale: frontier at view 5 is 2
      .Build();
}

// Reader whose view precedes a writer's commit on a shared key: clean
// for the real checkers, but the planted arrival-time EXT oracle flips
// between the two arrival orders.
History PlantedFlipHistory() {
  return HistoryBuilder()
      .Txn(1, 0, 0, 5, 6).R(0, 0)
      .Txn(2, 1, 0, 1, 10).W(0, 1)
      .Build();
}

TEST(OracleTest, CleanHistoryIsInvariantAcrossAllSchedules) {
  // Two key-disjoint groups: 36 classes out of 720 extensions.
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 2).W(0, 1)
                  .Txn(2, 1, 0, 3, 4).W(0, 2)
                  .Txn(3, 2, 0, 5, 6).R(0, 2)
                  .Txn(4, 3, 0, 7, 8).W(1, 1)
                  .Txn(5, 4, 0, 9, 10).W(1, 2)
                  .Txn(6, 5, 0, 11, 12).R(1, 2)
                  .Build();
  ExploreOptions opts;
  ExploreResult r = ExploreHistory(h, opts);
  EXPECT_TRUE(r.error.empty());
  EXPECT_FALSE(r.flip_found) << r.rule << ": " << r.detail;
  EXPECT_EQ(r.explored, 36u);
  EXPECT_GT(r.pruned, 0u);
  for (size_t c : r.reference_counts) EXPECT_EQ(c, 0u);
}

TEST(OracleTest, ViolatingHistoryKeepsItsVerdictOnEverySchedule) {
  ExploreOptions opts;
  ExploreResult r = ExploreHistory(StaleReadHistory(), opts);
  EXPECT_FALSE(r.flip_found) << r.rule << ": " << r.detail;
  EXPECT_EQ(r.explored, 6u);  // fully dependent: all 3! orders
  EXPECT_EQ(r.reference_counts[static_cast<size_t>(ViolationType::kExt)], 1u);
}

TEST(OracleTest, AdversarialTimingAgreesWithCalmTiming) {
  ExploreOptions calm;
  calm.oracle.adversarial_timing = false;
  ExploreOptions stall;
  stall.oracle.adversarial_timing = true;
  ExploreResult a = ExploreHistory(StaleReadHistory(), calm);
  ExploreResult b = ExploreHistory(StaleReadHistory(), stall);
  EXPECT_FALSE(a.flip_found);
  EXPECT_FALSE(b.flip_found);
  EXPECT_EQ(a.reference_counts, b.reference_counts);
  EXPECT_EQ(a.explored, b.explored);
}

TEST(OracleTest, NoConflictPairSurvivesScheduleNormalization) {
  // Two overlapping writers: which one the report is attributed to
  // depends on arrival order; the normalized unordered pair must not.
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 5).W(0, 1)
                  .Txn(2, 1, 0, 2, 4).W(0, 2)
                  .Txn(3, 2, 0, 7, 8).W(1, 1)  // independent bystander
                  .Build();
  ExploreOptions opts;
  ExploreResult r = ExploreHistory(h, opts);
  EXPECT_FALSE(r.flip_found) << r.rule << ": " << r.detail;
  EXPECT_GE(r.reference_counts[static_cast<size_t>(ViolationType::kNoConflict)],
            1u);
}

TEST(OracleTest, DuplicateTimestampsFallBackToDupDetectionOnly) {
  // Two distinct txns sharing a commit timestamp: whichever arrives
  // second is dropped (D6), so only TS-DUP detection is comparable.
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 4).W(0, 1)
                  .Txn(2, 1, 0, 2, 4).W(0, 2)
                  .Build();
  ExploreOptions opts;
  ExploreResult r = ExploreHistory(h, opts);
  EXPECT_FALSE(r.flip_found) << r.rule << ": " << r.detail;
  EXPECT_GT(
      r.reference_counts[static_cast<size_t>(ViolationType::kTsDuplicate)],
      0u);
}

TEST(OracleTest, ActiveGcExploresAllExtensionsAndStaysInvariant) {
  ExploreOptions opts;
  opts.oracle.gc_every = 1;
  opts.oracle.gc_target = 0;
  ExploreResult r = ExploreHistory(StaleReadHistory(), opts);
  // Position-sensitive: no pruning, every extension is its own class.
  EXPECT_EQ(r.explored, 6u);
  EXPECT_EQ(r.pruned, 0u);
  // EXT/NOCONFLICT equality is waived under GC (D7) but INT/TS-ORDER
  // counts and the impl-identity checks still must hold.
  EXPECT_FALSE(r.flip_found) << r.rule << ": " << r.detail;
}

TEST(OracleTest, FiniteTimeoutDisablesPruningAndStaysInvariant) {
  ExploreOptions opts;
  opts.oracle.ext_timeout_ms = 2;
  ExploreResult r = ExploreHistory(StaleReadHistory(), opts);
  EXPECT_EQ(r.explored, 6u);
  EXPECT_EQ(r.pruned, 0u);
  EXPECT_FALSE(r.flip_found) << r.rule << ": " << r.detail;
}

TEST(OracleTest, OversizedHistoryIsRejectedWithClearError) {
  HistoryBuilder b;
  for (TxnId i = 1; i <= kMaxExploreTxns + 1; ++i) {
    b.Txn(i, static_cast<SessionId>(i - 1), 0, 2 * i - 1, 2 * i).W(0, i);
  }
  ExploreResult r = ExploreHistory(b.Build(), {});
  EXPECT_FALSE(r.error.empty());
  EXPECT_NE(r.error.find("at most"), std::string::npos);
  EXPECT_EQ(r.explored, 0u);
}

TEST(OracleTest, PlantedFrontierBugIsCaughtAndShrinks) {
  ExploreOptions opts;
  opts.oracle.plant_frontier_bug = true;
  History h = PlantedFlipHistory();

  ExploreResult r = ExploreHistory(h, opts);
  ASSERT_TRUE(r.flip_found);
  EXPECT_EQ(r.rule, "planted-frontier");
  ASSERT_EQ(r.flip_schedule.size(), 2u);
  EXPECT_NE(r.flip_schedule, r.reference_schedule);

  ShrunkFlip shrunk = ShrinkFlip(h, opts);
  ASSERT_TRUE(shrunk.result.flip_found);
  EXPECT_EQ(shrunk.result.rule, "planted-frontier");
  EXPECT_LE(shrunk.history.txns.size(), 4u);
  EXPECT_GT(shrunk.predicate_calls, 0u);

  std::string sidecar = FormatScheduleSidecar(shrunk.result);
  EXPECT_NE(sidecar.find("chronos-explore-schedule v1\n"), std::string::npos);
  EXPECT_NE(sidecar.find("rule=planted-frontier\n"), std::string::npos);
  EXPECT_NE(sidecar.find("reference="), std::string::npos);
  EXPECT_NE(sidecar.find("flip="), std::string::npos);
}

// The planted bug buried in a larger history still shrinks to the
// minimal flipping core (<= 4 txns per the acceptance bar; the core
// here is 2).
TEST(OracleTest, PlantedBugInLargerHistoryShrinksToTinyCore) {
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 5, 6).R(0, 0)
                  .Txn(2, 1, 0, 1, 10).W(0, 1)
                  .Txn(3, 2, 0, 11, 12).W(1, 1)
                  .Txn(4, 3, 0, 13, 14).R(1, 1)
                  .Txn(5, 4, 0, 15, 16).W(2, 7)
                  .Build();
  ExploreOptions opts;
  opts.oracle.plant_frontier_bug = true;
  ShrunkFlip shrunk = ShrinkFlip(h, opts);
  ASSERT_TRUE(shrunk.result.flip_found);
  EXPECT_LE(shrunk.history.txns.size(), 4u);
  EXPECT_FALSE(shrunk.result.flip_schedule.empty());
}

TEST(OracleTest, MaxSchedulesTruncationIsReported) {
  ExploreOptions opts;
  opts.max_schedules = 2;
  ExploreResult r = ExploreHistory(StaleReadHistory(), opts);
  EXPECT_TRUE(r.truncated);
  EXPECT_EQ(r.explored, 2u);
  EXPECT_FALSE(r.flip_found);
}

}  // namespace
}  // namespace chronos::explore
