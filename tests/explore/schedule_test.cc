// The schedule-space model: canonical arrival order, key/timestamp
// footprints, and the commutativity (independence) relation that the
// DPOR enumerator prunes with.
#include <vector>

#include <gtest/gtest.h>

#include "explore/schedule.h"

#include "../testutil.h"

namespace chronos::explore {
namespace {

using chronos::testing::HistoryBuilder;

TEST(ScheduleTest, CanonicalArrivalsSortByCommitThenTid) {
  History h = HistoryBuilder()
                  .Txn(3, 0, 0, 1, 9).W(0, 1)
                  .Txn(1, 1, 0, 2, 5).W(1, 1)
                  .Txn(2, 2, 0, 3, 5).W(2, 1)
                  .Build();
  std::vector<Arrival> a = CanonicalArrivals(h, CheckMode::kSi);
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a[0].txn->tid, 1u);  // commit 5, tid 1
  EXPECT_EQ(a[1].txn->tid, 2u);  // commit 5, tid 2
  EXPECT_EQ(a[2].txn->tid, 3u);  // commit 9
}

TEST(ScheduleTest, FootprintCollectsAllOpKindsSortedDeduped) {
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 2)
                  .W(5, 1).R(3, 0).W(5, 2).A(7, 1).L(2, {})
                  .Build();
  std::vector<Arrival> a = CanonicalArrivals(h, CheckMode::kSi);
  EXPECT_EQ(a[0].keys, (std::vector<Key>{2, 3, 5, 7}));
}

TEST(ScheduleTest, RegisteredTimestampsFollowIngressRules) {
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 3, 7).W(0, 1)   // SI: start and commit
                  .Txn(2, 1, 0, 4, 4).W(1, 1)   // start == commit: one entry
                  .Txn(3, 2, 0, 9, 8).W(2, 1)   // Eq.(1) invalid: none (SI)
                  .Build();
  std::vector<Arrival> si = CanonicalArrivals(h, CheckMode::kSi);
  // Canonical order: tid 2 (commit 4), tid 1 (commit 7), tid 3 (commit 8).
  EXPECT_EQ(si[0].reg_ts, (std::vector<Timestamp>{4}));
  EXPECT_EQ(si[1].reg_ts, (std::vector<Timestamp>{3, 7}));
  EXPECT_TRUE(si[2].reg_ts.empty());

  // SER registers only commit timestamps, Eq.(1) validity is moot.
  std::vector<Arrival> ser = CanonicalArrivals(h, CheckMode::kSer);
  EXPECT_EQ(ser[0].reg_ts, (std::vector<Timestamp>{4}));
  EXPECT_EQ(ser[1].reg_ts, (std::vector<Timestamp>{7}));
  EXPECT_EQ(ser[2].reg_ts, (std::vector<Timestamp>{8}));
}

TEST(ScheduleTest, DependenceAxes) {
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 2).W(0, 1)    // key 0
                  .Txn(2, 0, 1, 3, 4).W(5, 1)    // same session as tid 1
                  .Txn(3, 1, 0, 5, 6).W(0, 2)    // shares key 0 with tid 1
                  .Txn(4, 2, 0, 7, 8).W(9, 1)    // disjoint from everything
                  .Txn(5, 3, 0, 1, 10).W(7, 1)   // shares start_ts 1 w/ tid 1
                  .Build();
  std::vector<Arrival> a = CanonicalArrivals(h, CheckMode::kSi);
  // Canonical order == tid order here (commit 2,4,6,8,10).
  Dependence dep(a, /*position_sensitive=*/false);
  EXPECT_TRUE(dep.Depends(0, 1));   // same session
  EXPECT_TRUE(dep.Depends(0, 2));   // shared key
  EXPECT_FALSE(dep.Depends(0, 3));  // disjoint keys, sessions, timestamps
  EXPECT_TRUE(dep.Depends(0, 4));   // shared registered timestamp
  EXPECT_FALSE(dep.Depends(1, 2));
  EXPECT_FALSE(dep.Depends(2, 3));
  // Symmetry.
  EXPECT_TRUE(dep.Depends(2, 0));
  EXPECT_FALSE(dep.Depends(3, 0));
}

// A finite EXT timeout or an active GC cadence makes an arrival's
// position decide which deadlines fire / where the watermark lands, so
// every pair is conservatively dependent.
TEST(ScheduleTest, PositionSensitiveMarksAllPairsDependent) {
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 2).W(0, 1)
                  .Txn(2, 1, 0, 3, 4).W(1, 1)
                  .Build();
  std::vector<Arrival> a = CanonicalArrivals(h, CheckMode::kSi);
  EXPECT_FALSE(Dependence(a, false).Depends(0, 1));
  EXPECT_TRUE(Dependence(a, true).Depends(0, 1));
}

TEST(ScheduleTest, FormatAndTids) {
  History h = HistoryBuilder()
                  .Txn(1, 0, 0, 1, 2).W(0, 1)
                  .Txn(2, 1, 0, 3, 4).W(1, 1)
                  .Build();
  std::vector<Arrival> a = CanonicalArrivals(h, CheckMode::kSi);
  EXPECT_EQ(FormatSchedule(a, {1, 0}), "2,1");
  EXPECT_EQ(ScheduleTids(a, {1, 0}), (std::vector<TxnId>{2, 1}));
}

}  // namespace
}  // namespace chronos::explore
